// Package buddy is a from-scratch reproduction of "Buddy Compression:
// Enabling Larger Memory for Deep Learning and HPC Workloads on GPUs"
// (Choukse et al., ISCA 2020), grown into a layered, concurrency-safe
// compressed-memory driver. It provides:
//
//   - the Buddy Compression mechanism itself: compressed GPU allocations
//     with fixed per-entry sector budgets split between a device slab and
//     an overflow tier (New, Device.Malloc),
//   - a byte-addressed bulk I/O surface — Allocation satisfies io.ReaderAt
//     and io.WriterAt, and Memcpy mirrors cudaMemcpy — so callers never
//     deal in 128 B entries; aligned spans compress and decompress in
//     parallel across a bounded worker pool (WriteEntries, ReadEntries),
//   - pluggable storage tiers behind the Backend interface: the paper's
//     NVLink buddy carve-out, plus a host unified-memory fallback
//     (WithHostFallback) and room for peer-GPU or disaggregated tiers,
//   - a sharded multi-device pool for fleet-scale serving: placement with
//     spill-over across N devices, per-shard bounded async submission
//     queues and aggregated telemetry (NewPool, Pool.SubmitWrite,
//     Pool.Stats),
//   - the profiling pass that chooses per-allocation target compression
//     ratios under a Buddy Threshold (Profile),
//   - the hardware compression algorithms the paper evaluates (NewBPC and
//     the baselines via Codecs),
//   - the synthetic workload suite standing in for the paper's sixteen
//     benchmarks (Workloads), and
//   - a self-registering experiment registry that regenerates every table
//     and figure of the paper's evaluation (ExperimentRegistry,
//     RunExperiment and cmd/buddysim).
//
// See DESIGN.md for the system inventory and layer diagram.
package buddy

import (
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/memory"
	"buddy/internal/pool"
	"buddy/internal/workloads"
)

// EntryBytes is the compression granularity: one 128 B memory-entry.
// Byte-addressed callers (ReadAt, WriteAt, Memcpy) never need it; it is
// exported for traffic accounting and entry-granular tools.
const EntryBytes = compress.EntryBytes

// SectorBytes is the GPU memory access granularity (32 B).
const SectorBytes = compress.SectorBytes

// Device is a Buddy Compression GPU memory device. It is safe for
// concurrent use by multiple goroutines.
type Device = core.Device

// Allocation is a compressed allocation on a Device. It satisfies
// io.ReaderAt and io.WriterAt: callers address plain byte offsets and the
// driver handles compression, sector placement and overflow underneath.
type Allocation = core.Allocation

// Backend is one pluggable storage tier (device slab, NVLink buddy
// carve-out, host unified-memory fallback, ...).
type Backend = core.Backend

// BackendTraffic is a snapshot of one tier's access counters.
type BackendTraffic = core.BackendTraffic

// Traffic holds a snapshot of a Device's byte-level traffic counters.
type Traffic = core.Traffic

// TargetRatio is an allocation's annotated target compression ratio.
type TargetRatio = core.TargetRatio

// Target ratios (§3.2): 4, 3, 2 or 1 device sectors per 128 B entry, plus
// the 16x mostly-zero mode keeping 8 B (§3.4).
const (
	Target1x    = core.Target1x
	Target4by3x = core.Target4by3x
	Target2x    = core.Target2x
	Target4x    = core.Target4x
	Target16x   = core.Target16x
)

// Memcpy copies n bytes from the start of src to the start of dst through
// both compression pipelines — the transparent-memory equivalent of
// cudaMemcpy(dst, src, n). The allocations may live on different devices.
func Memcpy(dst, src *Allocation, n int64) (int64, error) {
	return core.Memcpy(dst, src, n)
}

// Pool is a shard router over N independent Devices behind one front door:
// placement, spill-over, async batched serving and aggregate stats for a
// fleet of buddy-compressed GPUs. Build one with NewPool. It is safe for
// concurrent use by multiple goroutines.
type Pool = pool.Pool

// Handle is an allocation placed on one of a Pool's shards; it routes
// ReadAt/WriteAt/Close to the owning device and satisfies io.ReaderAt,
// io.WriterAt and io.Closer.
type Handle = pool.Handle

// Future is the pending result of a Pool.SubmitRead/SubmitWrite.
type Future = pool.Future

// PoolStats is the pool-wide aggregate of per-shard telemetry: summed
// Traffic, fleet capacity and the access-weighted metadata-cache hit rate.
type PoolStats = pool.Stats

// ShardStats is one shard's slice of PoolStats, including the overflow
// link's accumulated busy cycles per direction.
type ShardStats = pool.ShardStats

// ShardLoad is the per-shard occupancy view a Placement policy picks from.
type ShardLoad = pool.ShardLoad

// Placement chooses the shard a Pool first offers each allocation to; the
// pool spills through the remaining shards in index order when the choice
// is out of memory.
type Placement = pool.Placement

// PlaceLeastUsed is the default placement: the shard with the fewest
// device bytes in use, ties broken toward the lowest shard index.
func PlaceLeastUsed() Placement { return pool.LeastUsed() }

// PlaceRoundRobin rotates allocations across shards in submission order.
func PlaceRoundRobin() Placement { return pool.RoundRobin() }

// PlaceShard pins placement to one explicit shard (spill-over still
// applies when it is full).
func PlaceShard(shard int) Placement { return pool.Explicit(shard) }

// ErrPoolClosed is returned (wrapped) by operations on a closed Pool.
var ErrPoolClosed = pool.ErrClosed

// Tenant is a named tenant's front door on a Pool: Malloc places
// allocations charged against the tenant's quota and scheduled in its
// priority class and weighted share; Stats reads its serving telemetry.
// Configure tenants with WithTenants and obtain handles with Pool.Tenant.
type Tenant = pool.Tenant

// TenantConfig declares one tenant's serving contract: capacity quota
// (stored compressed bytes), deficit-round-robin weight within its
// priority class, and the class itself.
type TenantConfig = pool.TenantConfig

// TenantStats is one tenant's slice of PoolStats: quota occupancy,
// admission rejections, queue depth and the modeled latency distribution.
type TenantStats = pool.TenantStats

// LatencyDist summarizes a modeled completion-latency distribution
// (p50/p95/p99 in device+link cycles) from the serving layer's
// fixed-bucket log histograms.
type LatencyDist = pool.LatencyDist

// DefaultTenant is the name of the tenant owning untenanted traffic
// (plain Pool.Malloc); it always exists.
const DefaultTenant = pool.DefaultTenant

// ErrQuotaExceeded is returned (wrapped) by Malloc when an allocation
// would push its tenant's stored compressed bytes over the configured
// CapacityBytes.
var ErrQuotaExceeded = pool.ErrQuotaExceeded

// MemcpyHandles copies n bytes from the start of src to the start of dst
// through both compression pipelines; the handles may live on different
// shards — the pool equivalent of a peer-to-peer cudaMemcpy.
func MemcpyHandles(dst, src *Handle, n int64) (int64, error) {
	return pool.Memcpy(dst, src, n)
}

// FailureInjector kills shards of the Pool it is attached to (see
// WithFailureInjector) — the fault hook behind failure-recovery testing
// and the heal experiment.
type FailureInjector = pool.FailureInjector

// NewFailureInjector returns an unattached injector; pass it to NewPool
// via WithFailureInjector, then Kill shards mid-serve.
func NewFailureInjector() *FailureInjector { return pool.NewFailureInjector() }

// RecoveryStats reports one shard recovery: entries rebuilt, compressed
// bytes streamed back over the buddy link, and wall-clock elapsed.
type RecoveryStats = pool.RecoveryStats

// ErrShardDraining is returned (wrapped) when an operation targets a Pool
// shard that is draining.
var ErrShardDraining = pool.ErrShardDraining

// ErrShardFailed is returned (wrapped) when an operation targets a Pool
// shard whose device tier has been killed and not yet recovered.
var ErrShardFailed = pool.ErrShardFailed

// ErrDeviceFailed is returned (wrapped) by data-path operations on a
// device whose tier has been killed by a FailureInjector and not yet
// rebuilt.
var ErrDeviceFailed = core.ErrDeviceFailed

// ErrFreed is returned (wrapped) by every I/O operation on an allocation
// released with Device.Free or Allocation.Close.
var ErrFreed = core.ErrFreed

// ErrOutOfMemory is returned (wrapped) when an allocation or a live
// migration does not fit a storage tier's capacity.
var ErrOutOfMemory = core.ErrOutOfMemory

// ReprofilePlan is a checkpoint-time target-update plan (§3.4 extension):
// which allocations should change ratio, what that buys, and what the
// migration costs. Compute one with PlanReprofile and execute it on a live
// device with Device.ApplyReprofile.
type ReprofilePlan = core.ReprofilePlan

// ReprofileDecision is one allocation's proposed target change.
type ReprofileDecision = core.ReprofileDecision

// MigrationStats reports what Device.ApplyReprofile actually did.
type MigrationStats = core.MigrationStats

// PlanReprofile computes a checkpoint-time target update from fresh
// profiling snapshots: current maps allocation names to the targets in
// force (missing names default to 1x). Gate on Device.ReprofileWorthwhile
// (or ReprofilePlan.Worthwhile) before applying.
func PlanReprofile(current map[string]TargetRatio, snaps []*Snapshot, c Codec, opt ProfileOptions) *ReprofilePlan {
	return core.PlanReprofile(current, snaps, c, opt)
}

// Codec is the single-pass, allocation-free compression API: one
// AppendCompressed encode yields both the framed stream and its exact bit
// length, and DecompressInto decodes into caller memory.
type Codec = compress.Codec

// Compressor is the old name for Codec; the legacy allocate-per-call
// methods it once carried (CompressedBits, Compress, Decompress) are gone.
//
// Deprecated: use Codec.
type Compressor = compress.Codec

// NewBPC returns Bit-Plane Compression, the paper's chosen algorithm.
func NewBPC() Codec { return compress.NewBPC() }

// Codecs returns every implemented algorithm: BPC plus the BDI, FPC, FVC,
// C-PACK and zero-compression baselines of the paper's comparison (§2.4).
func Codecs() []Codec { return compress.Registry() }

// CodecByName returns the implemented algorithm with the given name
// ("bpc", "bdi", "fpc", "fvc", "cpack", "zero") — the lookup behind
// name-based codec selection in the command-line tools.
func CodecByName(name string) (Codec, error) { return compress.ByName(name) }

// Compressors returns every implemented algorithm.
//
// Deprecated: use Codecs.
func Compressors() []Codec { return Codecs() }

// ProfileOptions configure the profiling pass.
type ProfileOptions = core.ProfileOptions

// ProfileResult is the outcome of the profiling pass.
type ProfileResult = core.ProfileResult

// FinalDesign returns the paper's final profiling configuration:
// per-allocation targets, 30% Buddy Threshold, zero-page optimization, 4x
// carve-out cap (§3.5).
func FinalDesign() ProfileOptions { return core.FinalDesign() }

// Profile runs the target-ratio selection pass over profiling snapshots.
// Each snapshot is compressed exactly once, in parallel, into a shared
// sector-class index (see internal/analysis) — like the data path, c must
// be safe for concurrent use (all built-in algorithms are stateless and
// qualify).
func Profile(snaps []*Snapshot, c Codec, opt ProfileOptions) *ProfileResult {
	return core.Profile(snaps, c, opt)
}

// Snapshot is one memory dump: the live allocations at a point in a
// workload's execution.
type Snapshot = memory.Snapshot

// MemAllocation is one region of a Snapshot.
type MemAllocation = memory.Allocation

// Benchmark describes one synthetic workload of Tab. 1.
type Benchmark = workloads.Benchmark

// Workloads returns the sixteen benchmarks of the paper's Tab. 1.
func Workloads() []Benchmark { return workloads.Table1() }

// WorkloadByName returns the named Tab. 1 benchmark.
func WorkloadByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// GenerateRun synthesizes a benchmark's ten profiling snapshots at 1/scale
// of its true footprint (statistics are per-entry and scale-free).
func GenerateRun(b Benchmark, scale int) []*Snapshot {
	return workloads.GenerateRun(b, scale)
}

// LoadSnapshot allocates a snapshot's regions on a device with the given
// targets (falling back to 1x) and writes every region through the
// compression pipeline in bulk. It returns the created allocations in
// order.
func LoadSnapshot(d *Device, s *Snapshot, targets map[string]TargetRatio) ([]*Allocation, error) {
	var out []*Allocation
	for _, a := range s.Allocations {
		t, ok := targets[a.Name]
		if !ok {
			t = Target1x
		}
		alloc, err := d.Malloc(a.Name, int64(len(a.Data)), t)
		if err != nil {
			return out, err
		}
		if _, err := alloc.WriteAt(a.Data, 0); err != nil {
			return out, err
		}
		out = append(out, alloc)
	}
	return out, nil
}
