// Package buddy is a from-scratch reproduction of "Buddy Compression:
// Enabling Larger Memory for Deep Learning and HPC Workloads on GPUs"
// (Choukse et al., ISCA 2020). It provides:
//
//   - the Buddy Compression mechanism itself: compressed GPU allocations
//     with fixed per-entry sector budgets split between device memory and an
//     NVLink-attached buddy carve-out (NewDevice, Device.Malloc),
//   - the profiling pass that chooses per-allocation target compression
//     ratios under a Buddy Threshold (Profile),
//   - the hardware compression algorithms the paper evaluates (NewBPC and
//     the baselines via Compressors),
//   - the synthetic workload suite standing in for the paper's sixteen
//     benchmarks (Workloads), and
//   - runners that regenerate every table and figure of the paper's
//     evaluation (the Experiment* functions and cmd/buddysim).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package buddy

import (
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/memory"
	"buddy/internal/workloads"
)

// EntryBytes is the compression granularity: one 128 B memory-entry.
const EntryBytes = compress.EntryBytes

// SectorBytes is the GPU memory access granularity (32 B).
const SectorBytes = compress.SectorBytes

// Device is a Buddy Compression GPU memory device.
type Device = core.Device

// Allocation is a compressed allocation on a Device.
type Allocation = core.Allocation

// Config parameterizes a Device; the zero value takes the paper's final
// design defaults (§3.5).
type Config = core.Config

// Traffic holds a Device's byte-level traffic counters.
type Traffic = core.Traffic

// TargetRatio is an allocation's annotated target compression ratio.
type TargetRatio = core.TargetRatio

// Target ratios (§3.2): 4, 3, 2 or 1 device sectors per 128 B entry, plus
// the 16x mostly-zero mode keeping 8 B (§3.4).
const (
	Target1x    = core.Target1x
	Target4by3x = core.Target4by3x
	Target2x    = core.Target2x
	Target4x    = core.Target4x
	Target16x   = core.Target16x
)

// NewDevice creates a Buddy Compression device. Zero-valued Config fields
// default to the paper's final design (BPC, 12 GB device, 3x carve-out,
// 4-way sliced metadata cache).
func NewDevice(cfg Config) *Device { return core.NewDevice(cfg) }

// DefaultConfig returns the paper's final design parameters.
func DefaultConfig() Config { return core.DefaultConfig() }

// Compressor compresses 128 B memory-entries.
type Compressor = compress.Compressor

// NewBPC returns Bit-Plane Compression, the paper's chosen algorithm.
func NewBPC() Compressor { return compress.NewBPC() }

// Compressors returns every implemented algorithm: BPC plus the BDI, FPC,
// C-PACK and zero-compression baselines of the paper's comparison (§2.4).
func Compressors() []Compressor { return compress.Registry() }

// ProfileOptions configure the profiling pass.
type ProfileOptions = core.ProfileOptions

// ProfileResult is the outcome of the profiling pass.
type ProfileResult = core.ProfileResult

// FinalDesign returns the paper's final profiling configuration:
// per-allocation targets, 30% Buddy Threshold, zero-page optimization, 4x
// carve-out cap (§3.5).
func FinalDesign() ProfileOptions { return core.FinalDesign() }

// Profile runs the target-ratio selection pass over profiling snapshots.
func Profile(snaps []*Snapshot, c Compressor, opt ProfileOptions) *ProfileResult {
	return core.Profile(snaps, c, opt)
}

// Snapshot is one memory dump: the live allocations at a point in a
// workload's execution.
type Snapshot = memory.Snapshot

// MemAllocation is one region of a Snapshot.
type MemAllocation = memory.Allocation

// Benchmark describes one synthetic workload of Tab. 1.
type Benchmark = workloads.Benchmark

// Workloads returns the sixteen benchmarks of the paper's Tab. 1.
func Workloads() []Benchmark { return workloads.Table1() }

// WorkloadByName returns the named Tab. 1 benchmark.
func WorkloadByName(name string) (Benchmark, error) { return workloads.ByName(name) }

// GenerateRun synthesizes a benchmark's ten profiling snapshots at 1/scale
// of its true footprint (statistics are per-entry and scale-free).
func GenerateRun(b Benchmark, scale int) []*Snapshot {
	return workloads.GenerateRun(b, scale)
}

// LoadSnapshot allocates a snapshot's regions on a device with the given
// targets (falling back to 1x) and writes every entry through the
// compression pipeline. It returns the created allocations in order.
func LoadSnapshot(d *Device, s *Snapshot, targets map[string]TargetRatio) ([]*Allocation, error) {
	var out []*Allocation
	for _, a := range s.Allocations {
		t, ok := targets[a.Name]
		if !ok {
			t = Target1x
		}
		alloc, err := d.Malloc(a.Name, int64(len(a.Data)), t)
		if err != nil {
			return out, err
		}
		n := a.Entries()
		for i := 0; i < n; i++ {
			if err := alloc.WriteEntry(i, a.Entry(i)); err != nil {
				return out, err
			}
		}
		out = append(out, alloc)
	}
	return out, nil
}
