package buddy

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	// No options: the paper's final design — 12 GB device, 3x carve-out.
	dev := New()
	if got := dev.Carveout(); got != 3*(12<<30) {
		t.Errorf("default carve-out = %d, want %d", got, int64(3*(12<<30)))
	}
	if dev.DeviceUsed() != 0 || dev.BuddyUsed() != 0 {
		t.Error("fresh device reports usage")
	}
	primary, overflow := dev.Tiers()
	if primary.Name() != "device-slab" || overflow.Name() != "buddy-carveout" {
		t.Errorf("default tiers = %s/%s, want device-slab/buddy-carveout",
			primary.Name(), overflow.Name())
	}
	if primary.Capacity() != 12<<30 {
		t.Errorf("default device capacity = %d, want 12 GiB", primary.Capacity())
	}
}

func TestNewOptionsOverrideDefaults(t *testing.T) {
	dev := New(
		WithDeviceBytes(1<<20),
		WithCarveoutFactor(2),
		WithCodec(Codecs()[1]),
		WithMetadataCache(8<<10, 2, 2),
	)
	primary, overflow := dev.Tiers()
	if primary.Capacity() != 1<<20 {
		t.Errorf("device capacity = %d, want 1 MiB", primary.Capacity())
	}
	if overflow.Capacity() != 2<<20 {
		t.Errorf("carve-out capacity = %d, want 2 MiB", overflow.Capacity())
	}
	// Unset knobs still default: allocation works end to end.
	a, err := dev.Malloc("x", 64<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("options api round trip")
	if _, err := a.WriteAt(p, 11); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(p))
	if _, err := a.ReadAt(got, 11); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Error("facade round-trip mismatch")
	}
}

func TestDeprecatedCompressorAliases(t *testing.T) {
	// WithCompressor and Compressors stay as thin aliases for one release;
	// the lint gate exempts tests so this coverage can exist.
	dev := New(WithDeviceBytes(1<<20), WithCompressor(Compressors()[1]))
	a, err := dev.Malloc("alias", 8<<10, Target1x)
	if err != nil {
		t.Fatal(err)
	}
	p := []byte("deprecated alias round trip")
	if _, err := a.WriteAt(p, 3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(p))
	if _, err := a.ReadAt(got, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Error("alias-configured device round-trip mismatch")
	}
}

func TestWithHostFallback(t *testing.T) {
	dev := New(WithDeviceBytes(1<<20), WithHostFallback(0, 64<<10))
	_, overflow := dev.Tiers()
	if overflow.Name() != "host-um" {
		t.Fatalf("overflow tier = %s, want host-um", overflow.Name())
	}
	if dev.Carveout() >= 0 {
		t.Error("host fallback should report unbounded capacity")
	}
	// Incompressible data under an aggressive target overflows to host
	// memory and still round-trips.
	a, err := dev.Malloc("spill", 8<<10, Target4x)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, a.Size())
	for i := range data {
		data[i] = byte(i*2654435761 + i>>7)
	}
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, a.Size())
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("host-fallback round-trip mismatch")
	}
	if tr := overflow.Traffic(); tr.Stores == 0 {
		t.Error("incompressible data at 4x should have hit the overflow tier")
	}
}

func TestNewPoolOptions(t *testing.T) {
	// Default: one shard, least-used placement — the bare-device shape.
	p1, err := NewPool(WithDeviceBytes(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	if p1.Shards() != 1 || p1.Placement().Name() != "least-used" {
		t.Fatalf("default pool: %d shards, placement %s", p1.Shards(), p1.Placement().Name())
	}

	// Sharded: every device gets the per-shard config, including its own
	// carve-out (capacities must not be shared between shards).
	p4, err := NewPool(
		WithShards(4),
		WithDeviceBytes(1<<20),
		WithCarveoutFactor(2),
		WithPlacement(PlaceRoundRobin()),
		WithQueueDepth(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer p4.Close()
	st := p4.Stats()
	if len(st.Shards) != 4 || st.DeviceCapacity != 4<<20 {
		t.Fatalf("4-shard pool: %d shards, %d total capacity", len(st.Shards), st.DeviceCapacity)
	}
	for i := 0; i < 4; i++ {
		if got := p4.Device(i).Carveout(); got != 2<<20 {
			t.Fatalf("shard %d carve-out = %d, want per-shard 2 MiB", i, got)
		}
	}
	// Round-robin placement + async I/O through the public surface.
	data := []byte("pool options round trip")
	var hs []*Handle
	for i := 0; i < 4; i++ {
		h, err := p4.Malloc(fmt.Sprintf("t%d", i), 8<<10, Target2x)
		if err != nil {
			t.Fatal(err)
		}
		if h.Shard() != i {
			t.Fatalf("round-robin alloc %d on shard %d", i, h.Shard())
		}
		hs = append(hs, h)
		if _, err := p4.SubmitWrite(h, data, 64).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(data))
	if _, err := p4.SubmitRead(hs[2], got, 64).Wait(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pool async round-trip mismatch")
	}
	// Cross-shard handle copy.
	if _, err := MemcpyHandles(hs[3], hs[0], 1<<10); err != nil {
		t.Fatal(err)
	}

	// WithHostFallback builds a distinct pager per shard.
	ph, err := NewPool(WithShards(2), WithDeviceBytes(1<<20), WithHostFallback(0, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer ph.Close()
	_, o0 := ph.Device(0).Tiers()
	_, o1 := ph.Device(1).Tiers()
	if o0 == o1 {
		t.Error("host-fallback tiers must not be shared between shards")
	}
	// WithOverflowBackend shares the one instance, by contract.
	shared := NewCarveoutBackend(1<<20, LinkConfig{})
	ps, err := NewPool(WithShards(2), WithDeviceBytes(1<<20), WithOverflowBackend(shared))
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	_, s0 := ps.Device(0).Tiers()
	_, s1 := ps.Device(1).Tiers()
	if s0 != s1 || s0 != Backend(shared) {
		t.Error("WithOverflowBackend should install the shared instance on every shard")
	}
}

func TestAllocationIsReaderWriterAt(t *testing.T) {
	var _ io.ReaderAt = (*Allocation)(nil)
	var _ io.WriterAt = (*Allocation)(nil)
	// And the device no longer leaks its allocation list.
	dev := New(WithDeviceBytes(1 << 20))
	if _, err := dev.Malloc("a", 4<<10, Target1x); err != nil {
		t.Fatal(err)
	}
	list := dev.Allocations()
	list[0] = nil
	if dev.Allocations()[0] == nil {
		t.Error("Allocations() returned the internal slice")
	}
}

func TestExperimentRegistry(t *testing.T) {
	reg := ExperimentRegistry()
	if len(reg) != 20 {
		t.Fatalf("registered experiments = %d, want 20", len(reg))
	}
	for _, e := range reg {
		if e.Description == "" {
			t.Errorf("experiment %s has no description", e.Name)
		}
		if e.Run == nil {
			t.Errorf("experiment %s has no run function", e.Name)
		}
	}
	if _, ok := LookupExperiment("FIG7"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := LookupExperiment("no-such"); ok {
		t.Error("lookup of unknown name should fail")
	}
	// The registry rejects corruption.
	for _, bad := range []Experiment{
		{Name: "tab1", Run: func(io.Writer, ExperimentScale) error { return nil }}, // duplicate
		{Name: "", Run: func(io.Writer, ExperimentScale) error { return nil }},     // unnamed
		{Name: "x"}, // no run function
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %+v should panic", bad)
				}
			}()
			RegisterExperiment(bad)
		}()
	}
	// Registered order is stable and drives "all".
	var sb strings.Builder
	if err := RunExperiment(&sb, "tab1", QuickScale()); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Error("registry-run experiment produced no output")
	}
}
