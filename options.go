package buddy

import (
	"time"

	"buddy/internal/core"
	"buddy/internal/nvlink"
	"buddy/internal/pool"
)

// config gathers everything the options configure: the per-device core
// configuration plus the pool-level sharding and serving parameters. The
// overflow tier is carried as a factory so every shard of a pool gets its
// own instance (a Backend holds capacity and link state).
type config struct {
	core        core.Config
	overflow    func() Backend
	shards      int
	placement   pool.Placement
	queueDepth  int
	injector    *pool.FailureInjector
	autoRecover bool
	onRecover   func(RecoveryStats)
	rebalEvery  time.Duration
	rebalSkew   float64
	tenants     map[string]TenantConfig
}

// Option configures a Device built by New or a Pool built by NewPool. The
// zero configuration is the paper's final design (§3.5): BPC compression, a
// 12 GB device, a 3x NVLink buddy carve-out and a 4-way sliced metadata
// cache. Device-level options apply to every shard of a pool; pool-level
// options (WithShards, WithPlacement, WithQueueDepth) are ignored by New.
type Option func(*config)

// New creates a Buddy Compression device from the paper's final-design
// defaults, adjusted by the given options:
//
//	dev := buddy.New(
//		buddy.WithDeviceBytes(1<<30),
//		buddy.WithCodec(buddy.NewBPC()),
//		buddy.WithCarveoutFactor(3),
//	)
func New(opts ...Option) *Device {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	c := cfg.core
	if cfg.overflow != nil {
		c.Overflow = cfg.overflow()
	}
	return core.NewDevice(c)
}

// NewPool creates a sharded pool of devices behind one front door: N
// identically configured devices (one per shard, each with its own buddy
// carve-out and metadata cache), a placement policy routing allocations
// across them with transparent spill-over, and per-shard bounded queues
// serving asynchronous I/O:
//
//	p, err := buddy.NewPool(
//		buddy.WithShards(4),
//		buddy.WithDeviceBytes(1<<30),
//		buddy.WithPlacement(buddy.PlaceRoundRobin()),
//	)
//
// The default is a single shard with least-used placement — a 1-shard pool
// behaves byte-identically to a bare Device.
func NewPool(opts ...Option) (*Pool, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	n := cfg.shards
	if n <= 0 {
		n = 1
	}
	devices := make([]*core.Device, n)
	for i := range devices {
		c := cfg.core
		if cfg.overflow != nil {
			c.Overflow = cfg.overflow()
		}
		devices[i] = core.NewDevice(c)
	}
	return pool.New(devices, pool.Config{
		Placement:         cfg.placement,
		QueueDepth:        cfg.queueDepth,
		Injector:          cfg.injector,
		AutoRecover:       cfg.autoRecover,
		OnRecover:         cfg.onRecover,
		RebalanceInterval: cfg.rebalEvery,
		RebalanceSkew:     cfg.rebalSkew,
		Tenants:           cfg.tenants,
	})
}

// WithShards sets the number of devices behind a NewPool (default 1). Each
// shard is a full Device with its own slab, carve-out and metadata cache;
// aggregate pool capacity is shards x WithDeviceBytes.
func WithShards(n int) Option {
	return func(cfg *config) { cfg.shards = n }
}

// WithPlacement selects the pool's placement policy (default
// PlaceLeastUsed). See PlaceLeastUsed, PlaceRoundRobin and PlaceShard.
func WithPlacement(p Placement) Option {
	return func(cfg *config) { cfg.placement = p }
}

// WithQueueDepth bounds each shard's asynchronous submission queue:
// Pool.SubmitRead/SubmitWrite block when the owning shard already has this
// many operations queued (backpressure instead of unbounded buffering).
// The default is GOMAXPROCS at pool construction.
func WithQueueDepth(n int) Option {
	return func(cfg *config) { cfg.queueDepth = n }
}

// WithTenants declares a NewPool's named tenants: per-tenant capacity
// quota (admission control at Malloc, accounted in stored compressed
// bytes — ErrQuotaExceeded when exceeded), weighted-fair scheduling share
// and priority class. Obtain a tenant's Malloc front door with
// Pool.Tenant(name); per-tenant latency distributions and quota occupancy
// appear in Pool.Stats().Tenants. The default tenant (untenanted traffic)
// always exists; an entry named DefaultTenant configures it. Ignored by
// New.
//
//	p, err := buddy.NewPool(
//		buddy.WithShards(4),
//		buddy.WithTenants(map[string]buddy.TenantConfig{
//			"batch":   {Weight: 3},
//			"latency": {Priority: 2, CapacityBytes: 256 << 20},
//		}),
//	)
func WithTenants(tenants map[string]TenantConfig) Option {
	return func(cfg *config) { cfg.tenants = tenants }
}

// WithFailureInjector attaches a fault-injection hook to a NewPool: the
// injector's Kill(shard) marks that shard's device tier failed mid-serve
// (operations fail with errors wrapping ErrDeviceFailed) until
// Pool.Recover — or the AutoRecover supervisor — rebuilds it from the
// buddy carve-out. Ignored by New.
func WithFailureInjector(fi *FailureInjector) Option {
	return func(cfg *config) { cfg.injector = fi }
}

// WithAutoRecover starts the pool's maintenance supervisor: a killed
// shard's device tier is rebuilt from the buddy carve-out automatically.
// onRecover, if non-nil, observes each recovery (instrumentation; it runs
// on the supervisor goroutine). Ignored by New.
func WithAutoRecover(onRecover func(RecoveryStats)) Option {
	return func(cfg *config) {
		cfg.autoRecover = true
		cfg.onRecover = onRecover
	}
}

// WithRebalance enables the pool's rebalancer watcher: every interval the
// supervisor scans per-shard pressure (device occupancy plus link busy
// cycles) and live-migrates an allocation off the most saturated shard when
// the hottest-to-coldest skew exceeds the threshold (0 selects the default
// 0.5). Ignored by New.
func WithRebalance(interval time.Duration, skew float64) Option {
	return func(cfg *config) {
		cfg.rebalEvery = interval
		cfg.rebalSkew = skew
	}
}

// WithCodec selects the memory compression algorithm (default BPC, §2.4).
// See Codecs for the implemented baselines. The codec must be safe for
// concurrent use: the bulk data path fans it out across a worker pool even
// within a single ReadAt/WriteAt/Memcpy call (all built-in algorithms are
// stateless and qualify).
func WithCodec(c Codec) Option {
	return func(cfg *config) { cfg.core.Codec = c }
}

// WithCompressor selects the memory compression algorithm.
//
// Deprecated: use WithCodec.
func WithCompressor(c Codec) Option { return WithCodec(c) }

// WithDeviceBytes sets the GPU device-memory capacity available for
// compressed allocations (default 12 GB). For a pool this is the per-shard
// capacity.
func WithDeviceBytes(n int64) Option {
	return func(cfg *config) { cfg.core.DeviceBytes = n }
}

// WithCarveoutFactor sizes the buddy carve-out relative to device memory;
// the default 3x supports a 4x maximum target ratio (§3.2).
func WithCarveoutFactor(k int) Option {
	return func(cfg *config) { cfg.core.CarveoutFactor = k }
}

// LinkConfig describes the interconnect to the buddy carve-out; the zero
// value is NVLink2 (150 GB/s full-duplex, §2.3).
type LinkConfig = nvlink.Config

// WithLink configures the interconnect of the default buddy carve-out tier
// (bandwidth, clock, latency) — the Fig. 11 sweep variable. Each shard of a
// pool gets its own link.
func WithLink(link LinkConfig) Option {
	return func(cfg *config) { cfg.core.Link = link }
}

// WithMetadataCache sizes the sliced, set-associative metadata cache
// (default 64 KB total, 8 slices, 4 ways; §3.2, Fig. 5).
func WithMetadataCache(totalBytes, slices, ways int) Option {
	return func(cfg *config) {
		cfg.core.MetadataCacheBytes = totalBytes
		cfg.core.MetadataCacheSlices = slices
		cfg.core.MetadataCacheWays = ways
	}
}

// WithReprofileHorizon sets the access horizon (in memory accesses) the
// device amortizes checkpoint-time migrations over: ApplyReprofile callers
// gate on Device.ReprofileWorthwhile, which asks whether the plan's
// migration cost is repaid by its buddy-access reduction within this many
// accesses (ReprofilePlan.Worthwhile, §3.4 extension). Default 2^30.
func WithReprofileHorizon(accesses int64) Option {
	return func(cfg *config) { cfg.core.ReprofileHorizon = accesses }
}

// WithOverflowBackend replaces the overflow storage tier entirely. The
// default is the paper's NVLink buddy carve-out of
// DeviceBytes*CarveoutFactor; any Backend implementation (peer GPU,
// disaggregated appliance, ...) can stand in. With NewPool the single
// instance is shared by every shard — a fleet spilling into one
// disaggregated tier; use WithHostFallback or the default carve-out for
// per-shard overflow.
func WithOverflowBackend(b Backend) Option {
	return func(cfg *config) { cfg.overflow = func() Backend { return b } }
}

// WithHostFallback routes overflow sectors to host unified memory behind a
// demand pager instead of a buddy carve-out — the tier to use when no
// NVLink buddy memory is attached. pageBytes is the migration granularity
// (0 = 64 KB) and residentBytes bounds the pages kept hot. Each shard of a
// pool gets its own pager.
func WithHostFallback(pageBytes int, residentBytes int64) Option {
	return func(cfg *config) {
		cfg.overflow = func() Backend { return core.NewHostBackend(pageBytes, residentBytes) }
	}
}

// NewCarveoutBackend builds the paper's overflow tier explicitly: a buddy
// carve-out of the given capacity behind an interconnect link. Useful with
// WithOverflowBackend to decouple carve-out size from device size.
func NewCarveoutBackend(capacity int64, link LinkConfig) Backend {
	return core.NewCarveoutBackend(capacity, link)
}

// NewHostBackend builds the host unified-memory fallback tier explicitly.
func NewHostBackend(pageBytes int, residentBytes int64) Backend {
	return core.NewHostBackend(pageBytes, residentBytes)
}
