package buddy

import (
	"buddy/internal/core"
	"buddy/internal/nvlink"
)

// Option configures a Device built by New. The zero configuration is the
// paper's final design (§3.5): BPC compression, a 12 GB device, a 3x NVLink
// buddy carve-out and a 4-way sliced metadata cache.
type Option func(*core.Config)

// New creates a Buddy Compression device from the paper's final-design
// defaults, adjusted by the given options:
//
//	dev := buddy.New(
//		buddy.WithDeviceBytes(1<<30),
//		buddy.WithCodec(buddy.NewBPC()),
//		buddy.WithCarveoutFactor(3),
//	)
func New(opts ...Option) *Device {
	var cfg core.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	return core.NewDevice(cfg)
}

// WithCodec selects the memory compression algorithm (default BPC, §2.4).
// See Codecs for the implemented baselines. The codec must be safe for
// concurrent use: the bulk data path fans it out across a worker pool even
// within a single ReadAt/WriteAt/Memcpy call (all built-in algorithms are
// stateless and qualify).
func WithCodec(c Codec) Option {
	return func(cfg *core.Config) { cfg.Codec = c }
}

// WithCompressor selects the memory compression algorithm.
//
// Deprecated: use WithCodec.
func WithCompressor(c Codec) Option { return WithCodec(c) }

// WithDeviceBytes sets the GPU device-memory capacity available for
// compressed allocations (default 12 GB).
func WithDeviceBytes(n int64) Option {
	return func(cfg *core.Config) { cfg.DeviceBytes = n }
}

// WithCarveoutFactor sizes the buddy carve-out relative to device memory;
// the default 3x supports a 4x maximum target ratio (§3.2).
func WithCarveoutFactor(k int) Option {
	return func(cfg *core.Config) { cfg.CarveoutFactor = k }
}

// LinkConfig describes the interconnect to the buddy carve-out; the zero
// value is NVLink2 (150 GB/s full-duplex, §2.3).
type LinkConfig = nvlink.Config

// WithLink configures the interconnect of the default buddy carve-out tier
// (bandwidth, clock, latency) — the Fig. 11 sweep variable.
func WithLink(link LinkConfig) Option {
	return func(cfg *core.Config) { cfg.Link = link }
}

// WithMetadataCache sizes the sliced, set-associative metadata cache
// (default 64 KB total, 8 slices, 4 ways; §3.2, Fig. 5).
func WithMetadataCache(totalBytes, slices, ways int) Option {
	return func(cfg *core.Config) {
		cfg.MetadataCacheBytes = totalBytes
		cfg.MetadataCacheSlices = slices
		cfg.MetadataCacheWays = ways
	}
}

// WithReprofileHorizon sets the access horizon (in memory accesses) the
// device amortizes checkpoint-time migrations over: ApplyReprofile callers
// gate on Device.ReprofileWorthwhile, which asks whether the plan's
// migration cost is repaid by its buddy-access reduction within this many
// accesses (ReprofilePlan.Worthwhile, §3.4 extension). Default 2^30.
func WithReprofileHorizon(accesses int64) Option {
	return func(cfg *core.Config) { cfg.ReprofileHorizon = accesses }
}

// WithOverflowBackend replaces the overflow storage tier entirely. The
// default is the paper's NVLink buddy carve-out of
// DeviceBytes*CarveoutFactor; any Backend implementation (peer GPU,
// disaggregated appliance, ...) can stand in.
func WithOverflowBackend(b Backend) Option {
	return func(cfg *core.Config) { cfg.Overflow = b }
}

// WithHostFallback routes overflow sectors to host unified memory behind a
// demand pager instead of a buddy carve-out — the tier to use when no
// NVLink buddy memory is attached. pageBytes is the migration granularity
// (0 = 64 KB) and residentBytes bounds the pages kept hot.
func WithHostFallback(pageBytes int, residentBytes int64) Option {
	return func(cfg *core.Config) { cfg.Overflow = core.NewHostBackend(pageBytes, residentBytes) }
}

// NewCarveoutBackend builds the paper's overflow tier explicitly: a buddy
// carve-out of the given capacity behind an interconnect link. Useful with
// WithOverflowBackend to decouple carve-out size from device size.
func NewCarveoutBackend(capacity int64, link LinkConfig) Backend {
	return core.NewCarveoutBackend(capacity, link)
}

// NewHostBackend builds the host unified-memory fallback tier explicitly.
func NewHostBackend(pageBytes int, residentBytes int64) Backend {
	return core.NewHostBackend(pageBytes, residentBytes)
}
