// Benchmarks: one per table and figure of the paper's evaluation. Each
// bench regenerates its experiment end to end and reports the headline
// metric through testing.B custom metrics, so `go test -bench .` doubles as
// the reproduction harness. They run at reduced fidelity to keep the suite
// minutes-scale; cmd/buddysim runs the same code at reference fidelity.
package buddy

import (
	"io"
	"testing"

	"buddy/internal/compress"
	"buddy/internal/dltrain"
	"buddy/internal/exp"
	"buddy/internal/gen"
	"buddy/internal/gpusim"
	"buddy/internal/um"
	"buddy/internal/workloads"
)

const benchScale = 8192

// BenchmarkTable1 regenerates the benchmark inventory.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Table1(); len(rows) != 16 {
			b.Fatal("inventory broken")
		}
	}
}

// BenchmarkTable2 renders the simulator configuration.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Tab2(gpusim.DefaultConfig()) == "" {
			b.Fatal("empty Tab. 2")
		}
	}
}

// BenchmarkFig3 measures the optimistic compression study; reports the two
// gmeans the paper headlines (2.51 HPC / 1.85 DL).
func BenchmarkFig3(b *testing.B) {
	var res *exp.Fig3Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig3(benchScale)
	}
	b.ReportMetric(res.GMeanHPC, "gmeanHPC")
	b.ReportMetric(res.GMeanDL, "gmeanDL")
}

// BenchmarkFig5b sweeps the metadata cache sizes.
func BenchmarkFig5b(b *testing.B) {
	var rows []exp.Fig5bRow
	for i := 0; i < b.N; i++ {
		rows = exp.Fig5b([]int{8, 64, 256})
	}
	b.ReportMetric(rows[0].HitRates[1], "palmHit64KB")
}

// BenchmarkFig6 builds all sixteen heat-maps.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if maps := exp.Fig6(benchScale); len(maps) != 16 {
			b.Fatal("missing heat-maps")
		}
	}
}

// BenchmarkFig7 runs the three design points; reports final-design gmeans
// (paper: 1.9x HPC / 1.5x DL).
func BenchmarkFig7(b *testing.B) {
	var res *exp.Fig7Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig7(benchScale)
	}
	b.ReportMetric(res.FinalHPC.Ratio, "finalHPCx")
	b.ReportMetric(res.FinalDL.Ratio, "finalDLx")
	b.ReportMetric(res.FinalDL.BuddyFrac*100, "finalDLbuddy%")
}

// BenchmarkFig8 runs the over-time study.
func BenchmarkFig8(b *testing.B) {
	var rows []exp.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig8(benchScale)
	}
	b.ReportMetric(rows[0].Points[0].Ratio, "squeezeNetX")
}

// BenchmarkFig9 sweeps the Buddy Threshold.
func BenchmarkFig9(b *testing.B) {
	var rows []exp.Fig9Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig9(benchScale, nil)
	}
	b.ReportMetric(rows[0].Points[2].Ratio, "palmAt30%x")
}

// BenchmarkFig10 validates the simulator (correlation + speed).
func BenchmarkFig10(b *testing.B) {
	cfg := exp.ScaledSimConfig(0.2)
	var res *exp.Fig10Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig10(benchScale, cfg)
	}
	b.ReportMetric(res.CorrelationLog, "corr")
	b.ReportMetric(res.SpeedupVsDetailed, "fastVsDetailedX")
}

// BenchmarkFig11 runs the full performance sweep; reports the paper's
// headline relative-performance points.
func BenchmarkFig11(b *testing.B) {
	cfg := exp.ScaledSimConfig(0.2)
	var res *exp.Fig11Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig11(benchScale*2, cfg, nil)
	}
	b.ReportMetric(res.GMeanBWOnly, "bwOnlyX")
	b.ReportMetric(res.GMeanHPC150, "buddyHPC150X")
	b.ReportMetric(res.GMeanDL150, "buddyDL150X")
}

// BenchmarkFig12 runs the UM oversubscription sweep.
func BenchmarkFig12(b *testing.B) {
	var rows []exp.Fig12Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig12()
	}
	last := rows[0].Points[len(rows[0].Points)-1]
	b.ReportMetric(last.RelativeRuntime, "ilbdc40%X")
}

// BenchmarkFig13a sweeps footprints.
func BenchmarkFig13a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Fig13a(); len(rows) != 6 {
			b.Fatal("missing networks")
		}
	}
}

// BenchmarkFig13b sweeps throughput projections.
func BenchmarkFig13b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := exp.Fig13b(); len(rows) != 6 {
			b.Fatal("missing networks")
		}
	}
}

// BenchmarkFig13c computes the batch-scaling speedups (paper: mean ~1.14).
func BenchmarkFig13c(b *testing.B) {
	var res *exp.Fig13cResult
	for i := 0; i < b.N; i++ {
		res = exp.Fig13c()
	}
	b.ReportMetric(res.Mean, "meanSpeedupX")
}

// BenchmarkFig13d trains the convergence study (the heaviest bench).
func BenchmarkFig13d(b *testing.B) {
	cfg := exp.DefaultFig13dConfig()
	cfg.Epochs = 10
	cfg.Batches = []int{16, 64}
	for i := 0; i < b.N; i++ {
		if rows := exp.Fig13d(cfg); len(rows) != 2 {
			b.Fatal("missing curves")
		}
	}
}

// --- Component micro-benchmarks (ablations) --------------------------------

// BenchmarkCompressors compares the per-entry speed of every algorithm on a
// GPU-typical FP64 field (the §2.4 comparison, speed axis).
func BenchmarkCompressors(b *testing.B) {
	entry := make([]byte, compress.EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(1, 1))
	for _, c := range compress.Registry() {
		b.Run(c.Name(), func(b *testing.B) {
			sz := compress.NewSizer(c)
			b.SetBytes(compress.EntryBytes)
			for i := 0; i < b.N; i++ {
				sz.Bits(entry)
			}
		})
	}
}

// BenchmarkDeviceWrite measures the end-to-end compressed write path.
func BenchmarkDeviceWrite(b *testing.B) {
	dev := New(WithDeviceBytes(64 << 20))
	alloc, err := dev.Malloc("bench", 32<<20, Target2x)
	if err != nil {
		b.Fatal(err)
	}
	entry := make([]byte, EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(2, 1))
	b.SetBytes(EntryBytes)
	for i := 0; i < b.N; i++ {
		if err := alloc.WriteEntry(i%alloc.EntryCount, entry); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorFast measures the fast timing simulator's throughput in
// simulated memory operations per second.
func BenchmarkSimulatorFast(b *testing.B) {
	bench, err := workloads.ByName("356.sp")
	if err != nil {
		b.Fatal(err)
	}
	dm := gpusim.UncompressedModel(uint64(bench.Footprint / 16))
	cfg := gpusim.DefaultConfig()
	cfg.OpsPerWarp = 32
	var ops uint64
	for i := 0; i < b.N; i++ {
		r := gpusim.Run(bench.Trace, dm, gpusim.ModeIdeal, cfg)
		ops = r.MemAccesses
	}
	b.ReportMetric(float64(ops), "memops/run")
}

// BenchmarkUMOversubscription measures the paging model.
func BenchmarkUMOversubscription(b *testing.B) {
	bench, err := workloads.ByName("360.ilbdc")
	if err != nil {
		b.Fatal(err)
	}
	cfg := um.DefaultConfig()
	cfg.Accesses = 100000
	for i := 0; i < b.N; i++ {
		um.RunOversubscription(bench.Trace, uint64(bench.Footprint/64), 0.2, cfg)
	}
}

// BenchmarkDLModel measures the analytical case-study model.
func BenchmarkDLModel(b *testing.B) {
	cfg := dltrain.DefaultModelConfig()
	for i := 0; i < b.N; i++ {
		for _, n := range dltrain.Networks() {
			dltrain.MaxBatch(n, dltrain.DeviceMemoryBytes, cfg)
		}
	}
}

// BenchmarkExperimentRunner exercises the text renderers end to end.
func BenchmarkExperimentRunner(b *testing.B) {
	sc := QuickScale()
	for i := 0; i < b.N; i++ {
		if err := RunExperiment(io.Discard, "tab1", sc); err != nil {
			b.Fatal(err)
		}
	}
}
